//! Trace-style arrival generators for the serving metasim.
//!
//! Where [`crate::WorkloadGenerator`] synthesizes the *content* of one
//! rerank request, a [`TraceGenerator`] synthesizes the *traffic* around
//! millions of them: arrival times under a diurnal load curve with
//! optional burst storms, tenants drawn from a Zipf distribution (a few
//! hot tenants dominate), session and corpus identity for cache
//! modeling, scheduling class, deadline slack, and caller cancellation.
//!
//! Everything follows the crate's determinism convention: event `i` is a
//! pure function of `(profile, seed, i)` — the same per-index seed mix
//! as [`crate::WorkloadGenerator::request`] — so simulations replay
//! bit-identically and any single event can be regenerated without its
//! prefix. Arrival *times* are the prefix sum of per-index inter-arrival
//! gaps (exponential at the instantaneous rate), which keeps the stream
//! deterministic while still Poisson-shaped.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::tokenizer::ZipfSampler;

/// How many events back a near-duplicate may reach for its base
/// corpus. Small enough that duplicates land while the base entry is
/// still cache-resident, large enough to spread over many sessions.
const DUP_LOOKBACK: u64 = 64;

/// Periodic burst storms layered on the base arrival rate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BurstSpec {
    /// Seconds between storm onsets.
    pub period_s: f64,
    /// Storm length in seconds.
    pub len_s: f64,
    /// Rate multiplier while a storm is active.
    pub factor: f64,
}

/// Shape of a simulated traffic trace.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceProfile {
    /// Profile name (`prsm simulate-serve --profile`).
    pub name: String,
    /// Mean arrival rate in requests/second before modulation.
    pub base_rps: f64,
    /// Day-curve amplitude in `[0, 1)`: the instantaneous rate swings
    /// between `base * (1 - amp)` (night trough) and `base * (1 + amp)`
    /// (midday peak) over a 24 h period.
    pub diurnal_amplitude: f64,
    /// Optional burst storms.
    pub burst: Option<BurstSpec>,
    /// Number of distinct tenants.
    pub tenants: usize,
    /// Zipf exponent of tenant popularity (hot tenants dominate).
    pub tenant_zipf: f64,
    /// Sessions per tenant (session id = `tenant * sessions + slot`).
    pub sessions_per_tenant: usize,
    /// Candidate-count range per request (inclusive).
    pub candidates: (usize, usize),
    /// Packed tokens per candidate (inclusive range).
    pub tokens_per_candidate: (usize, usize),
    /// Seconds a session keeps querying the same corpus before moving
    /// on — the dwell window that produces session-cache hits.
    pub corpus_dwell_s: f64,
    /// Fraction of requests in the `High` class.
    pub high_fraction: f64,
    /// Fraction of (non-high) requests in the `Bulk` class.
    pub bulk_fraction: f64,
    /// Fraction of requests carrying a deadline.
    pub deadline_fraction: f64,
    /// Deadline slack range in microseconds for deadline-bearing
    /// requests.
    pub deadline_us: (u64, u64),
    /// Fraction of requests whose caller cancels mid-flight.
    pub cancel_fraction: f64,
    /// Cancellation delay range (microseconds after submission).
    pub cancel_after_us: (u64, u64),
    /// Fraction of requests that re-rank the corpus another *recent*
    /// event introduced — cross-session near-duplicates that only a
    /// cross-request (semantic) cache can serve, since the duplicating
    /// event keeps its own tenant and session.
    pub dup_fraction: f64,
    /// Token-level perturbation strength for duplicated requests in
    /// `[0, 1]`: the probability that each body token of a duplicate is
    /// paraphrased (see [`crate::WorkloadGenerator::near_duplicate`]).
    /// `0.0` means duplicates are verbatim repeats.
    pub paraphrase_jitter: f64,
}

impl TraceProfile {
    fn base(name: &str, base_rps: f64) -> Self {
        TraceProfile {
            name: name.to_string(),
            base_rps,
            diurnal_amplitude: 0.0,
            burst: None,
            tenants: 10_000,
            tenant_zipf: 1.05,
            sessions_per_tenant: 4,
            candidates: (8, 16),
            tokens_per_candidate: (24, 48),
            corpus_dwell_s: 60.0,
            high_fraction: 0.05,
            bulk_fraction: 0.20,
            deadline_fraction: 0.30,
            deadline_us: (50_000, 2_000_000),
            cancel_fraction: 0.01,
            cancel_after_us: (1_000, 100_000),
            dup_fraction: 0.0,
            paraphrase_jitter: 0.0,
        }
    }

    /// Flat Poisson arrivals at `base_rps`.
    pub fn steady(base_rps: f64) -> Self {
        Self::base("steady", base_rps)
    }

    /// A day curve: deep night trough, busy midday peak.
    pub fn diurnal(base_rps: f64) -> Self {
        TraceProfile {
            diurnal_amplitude: 0.85,
            ..Self::base("diurnal", base_rps)
        }
    }

    /// A day curve with 8x storms for 30 s every 10 min.
    pub fn burst_storm(base_rps: f64) -> Self {
        TraceProfile {
            diurnal_amplitude: 0.30,
            burst: Some(BurstSpec {
                period_s: 600.0,
                len_s: 30.0,
                factor: 8.0,
            }),
            ..Self::base("burst", base_rps)
        }
    }

    /// Steady arrivals where 60% of requests near-duplicate a recent
    /// event's corpus with light paraphrasing — the high-overlap regime
    /// a semantic result cache is built for.
    pub fn overlap(base_rps: f64) -> Self {
        TraceProfile {
            dup_fraction: 0.60,
            paraphrase_jitter: 0.10,
            ..Self::base("overlap", base_rps)
        }
    }

    /// Instantaneous rate multiplier at `t` seconds into the trace.
    pub fn rate_factor(&self, t_s: f64) -> f64 {
        let day = 86_400.0;
        let diurnal = 1.0
            + self.diurnal_amplitude.clamp(0.0, 0.999)
                * (2.0 * std::f64::consts::PI * (t_s / day - 0.25)).sin();
        let burst = match self.burst {
            Some(b) if b.period_s > 0.0 && t_s.rem_euclid(b.period_s) < b.len_s => b.factor,
            _ => 1.0,
        };
        diurnal * burst
    }
}

/// A trace profile by name (`steady`, `diurnal`, `burst`, `overlap`).
pub fn trace_profile_by_name(name: &str, base_rps: f64) -> Option<TraceProfile> {
    match name {
        "steady" => Some(TraceProfile::steady(base_rps)),
        "diurnal" => Some(TraceProfile::diurnal(base_rps)),
        "burst" => Some(TraceProfile::burst_storm(base_rps)),
        "overlap" => Some(TraceProfile::overlap(base_rps)),
        _ => None,
    }
}

/// One generated request-arrival event. Scheduling class is encoded as
/// `0 = Bulk, 1 = Normal, 2 = High` so this crate stays independent of
/// the engine's `Priority` type.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Event index in the trace.
    pub index: u64,
    /// Microseconds since the previous event's arrival.
    pub inter_arrival_us: u64,
    /// Owning tenant (Zipf-skewed).
    pub tenant: u64,
    /// Session identity (`tenant * sessions_per_tenant + slot`).
    pub session: u64,
    /// Corpus identity: requests sharing `(session, corpus)` rerank the
    /// same candidate set (session-cache hits).
    pub corpus: u64,
    /// Candidate count.
    pub candidates: usize,
    /// Total packed tokens across all candidates.
    pub tokens: usize,
    /// Scheduling class: `0` Bulk, `1` Normal, `2` High.
    pub class: u8,
    /// Deadline slack in microseconds from arrival, if any.
    pub deadline_us: Option<u64>,
    /// Caller cancels this many microseconds after submission, if ever.
    pub cancel_after_us: Option<u64>,
    /// Index of the recent event whose *base* corpus this request
    /// re-ranks, if this event is a near-duplicate. The referenced
    /// event reports that same corpus unless it is itself a duplicate;
    /// either way all duplicates of one base event collide on `corpus`.
    pub duplicate_of: Option<u64>,
}

/// Seeded generator of [`TraceEvent`]s for one profile.
pub struct TraceGenerator {
    profile: TraceProfile,
    tenant_sampler: ZipfSampler,
    seed: u64,
}

impl TraceGenerator {
    /// Creates a generator for `profile` with deterministic `seed`.
    pub fn new(profile: TraceProfile, seed: u64) -> Self {
        let tenant_sampler = ZipfSampler::new(profile.tenants.max(1), profile.tenant_zipf);
        TraceGenerator {
            profile,
            tenant_sampler,
            seed,
        }
    }

    /// The profile driving this generator.
    pub fn profile(&self) -> &TraceProfile {
        &self.profile
    }

    /// Generates event `index` — a pure function of
    /// `(profile, seed, index)`.
    pub fn event(&self, index: u64) -> TraceEvent {
        let mut rng = StdRng::seed_from_u64(
            self.seed
                ^ index
                    .wrapping_mul(0xD6E8_FEB8_6659_FD93)
                    .wrapping_add(0x2545_F491_4F6C_DD1D),
        );
        let p = &self.profile;

        // Inter-arrival gap: exponential at the instantaneous rate,
        // evaluated at the event's *nominal* position in the trace
        // (index / base rate) so the day curve and storms modulate
        // density without needing the prefix sum.
        let nominal_t_s = index as f64 / p.base_rps.max(1e-9);
        let rate = (p.base_rps * p.rate_factor(nominal_t_s)).max(1e-9);
        let u: f64 = rng.gen::<f64>().max(1e-12);
        let inter_arrival_us = ((-u.ln() / rate) * 1e6).round().min(3.6e9) as u64;

        let (tenant, session, mut corpus) = self.identity(&mut rng, nominal_t_s);

        let candidates = rng.gen_range(p.candidates.0..=p.candidates.1.max(p.candidates.0));
        let per_candidate = rng.gen_range(
            p.tokens_per_candidate.0..=p.tokens_per_candidate.1.max(p.tokens_per_candidate.0),
        );
        let tokens = candidates * per_candidate;

        let class = if rng.gen::<f64>() < p.high_fraction {
            2
        } else if rng.gen::<f64>() < p.bulk_fraction {
            0
        } else {
            1
        };
        let deadline_us = (rng.gen::<f64>() < p.deadline_fraction)
            .then(|| rng.gen_range(p.deadline_us.0..=p.deadline_us.1.max(p.deadline_us.0)));
        let cancel_after_us = (rng.gen::<f64>() < p.cancel_fraction).then(|| {
            rng.gen_range(p.cancel_after_us.0..=p.cancel_after_us.1.max(p.cancel_after_us.0))
        });

        // Cross-session near-duplicates: with probability
        // `dup_fraction`, re-rank the corpus a recent event introduced
        // (short lookback window) while keeping this event's own tenant
        // and session, so only a cross-request cache can exploit the
        // repeat. Drawn after every other field so profiles with
        // `dup_fraction = 0` generate bit-identical events to traces
        // recorded before duplicates existed.
        let duplicate_of = (index > 0 && rng.gen::<f64>() < p.dup_fraction).then(|| {
            let back = rng.gen_range(1..=DUP_LOOKBACK.min(index));
            index - back
        });
        if let Some(orig) = duplicate_of {
            corpus = self.base_corpus(orig);
        }

        TraceEvent {
            index,
            inter_arrival_us,
            tenant,
            session,
            corpus,
            candidates,
            tokens,
            class,
            deadline_us,
            cancel_after_us,
            duplicate_of,
        }
    }

    /// Tenant/session/corpus draws shared by [`Self::event`] and
    /// duplicate-corpus resolution. Consumes the rng draws in the same
    /// order `event` historically did, keeping old traces replayable.
    fn identity(&self, rng: &mut StdRng, nominal_t_s: f64) -> (u64, u64, u64) {
        let p = &self.profile;
        let tenant = self.tenant_sampler.sample(rng) as u64;
        let slot = rng.gen_range(0..p.sessions_per_tenant.max(1)) as u64;
        let session = tenant * p.sessions_per_tenant.max(1) as u64 + slot;
        // The session dwells on one corpus per time window; repeats
        // within the window are session-cache hits.
        let dwell = (nominal_t_s / p.corpus_dwell_s.max(1e-9)) as u64;
        let corpus = (session << 20) ^ dwell;
        (tenant, session, corpus)
    }

    /// The corpus event `index` would report if it were not itself a
    /// duplicate — a pure function of `(profile, seed, index)`, so a
    /// duplicate's corpus resolves without generating its target.
    fn base_corpus(&self, index: u64) -> u64 {
        let mut rng = StdRng::seed_from_u64(
            self.seed
                ^ index
                    .wrapping_mul(0xD6E8_FEB8_6659_FD93)
                    .wrapping_add(0x2545_F491_4F6C_DD1D),
        );
        // Skip the inter-arrival draw that precedes identity in `event`.
        let _: f64 = rng.gen();
        let nominal_t_s = index as f64 / self.profile.base_rps.max(1e-9);
        self.identity(&mut rng, nominal_t_s).2
    }

    /// The first `n` events paired with absolute arrival times
    /// (microseconds from trace start; the prefix sum of the gaps).
    pub fn arrivals(&self, n: u64) -> impl Iterator<Item = (u64, TraceEvent)> + '_ {
        let mut at = 0_u64;
        (0..n).map(move |i| {
            let ev = self.event(i);
            at = at.saturating_add(ev.inter_arrival_us);
            (at, ev)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_are_deterministic_per_profile_seed_index() {
        let a = TraceGenerator::new(TraceProfile::diurnal(50.0), 7);
        let b = TraceGenerator::new(TraceProfile::diurnal(50.0), 7);
        for i in [0, 1, 17, 999, 123_456] {
            assert_eq!(a.event(i), b.event(i));
        }
        let c = TraceGenerator::new(TraceProfile::diurnal(50.0), 8);
        assert_ne!(a.event(3), c.event(3));
    }

    #[test]
    fn arrivals_are_monotone_prefix_sums() {
        let g = TraceGenerator::new(TraceProfile::burst_storm(100.0), 1);
        let mut prev = 0;
        let mut sum = 0_u64;
        for (at, ev) in g.arrivals(2_000) {
            sum += ev.inter_arrival_us;
            assert_eq!(at, sum);
            assert!(at >= prev);
            prev = at;
        }
    }

    #[test]
    fn tenant_skew_concentrates_mass() {
        let g = TraceGenerator::new(TraceProfile::steady(100.0), 3);
        let n = 20_000_u64;
        let mut counts = std::collections::HashMap::new();
        for i in 0..n {
            *counts.entry(g.event(i).tenant).or_insert(0_u64) += 1;
        }
        let top = counts.values().copied().max().unwrap();
        let uniform_share = n / g.profile().tenants as u64;
        // Zipf(1.05) over 10k tenants: the hottest tenant sees orders of
        // magnitude more traffic than the uniform share (~2 requests).
        assert!(
            top > uniform_share * 50,
            "top tenant {top} vs uniform {uniform_share}"
        );
        // ...but no single tenant swallows the trace.
        assert!(top < n / 2, "top tenant {top} of {n}");
    }

    #[test]
    fn burst_windows_compress_inter_arrivals() {
        let profile = TraceProfile::burst_storm(100.0);
        let g = TraceGenerator::new(profile.clone(), 11);
        let burst = profile.burst.unwrap();
        let (mut in_sum, mut in_n, mut out_sum, mut out_n) = (0_f64, 0_u64, 0_f64, 0_u64);
        for i in 0..200_000_u64 {
            let nominal_t = i as f64 / profile.base_rps;
            let ev = g.event(i);
            if nominal_t.rem_euclid(burst.period_s) < burst.len_s {
                in_sum += ev.inter_arrival_us as f64;
                in_n += 1;
            } else {
                out_sum += ev.inter_arrival_us as f64;
                out_n += 1;
            }
        }
        assert!(in_n > 0 && out_n > 0);
        let (in_mean, out_mean) = (in_sum / in_n as f64, out_sum / out_n as f64);
        // An 8x storm must compress mean gaps by at least 4x (diurnal
        // modulation adds variance on top).
        assert!(
            in_mean * 4.0 < out_mean,
            "storm mean {in_mean:.1}us vs calm mean {out_mean:.1}us"
        );
    }

    #[test]
    fn diurnal_rate_peaks_midday_and_troughs_at_night() {
        let p = TraceProfile::diurnal(10.0);
        let midnight = p.rate_factor(0.0);
        let midday = p.rate_factor(43_200.0);
        assert!(midday > 1.5, "midday factor {midday}");
        assert!(midnight < 0.7, "midnight factor {midnight}");
        // Steady profiles do not modulate.
        assert_eq!(TraceProfile::steady(10.0).rate_factor(43_200.0), 1.0);
    }

    #[test]
    fn corpus_dwell_repeats_within_a_window() {
        // With one tenant/session and a long dwell, consecutive events
        // share a corpus (the cache-hit fuel).
        let profile = TraceProfile {
            tenants: 1,
            sessions_per_tenant: 1,
            corpus_dwell_s: 1e9,
            ..TraceProfile::steady(50.0)
        };
        let g = TraceGenerator::new(profile, 5);
        let c0 = g.event(0).corpus;
        for i in 1..100 {
            assert_eq!(g.event(i).corpus, c0);
        }
    }

    #[test]
    fn event_fields_respect_profile_bounds() {
        let profile = TraceProfile::diurnal(25.0);
        let g = TraceGenerator::new(profile.clone(), 9);
        for i in 0..5_000_u64 {
            let ev = g.event(i);
            assert!((profile.candidates.0..=profile.candidates.1).contains(&ev.candidates));
            let per = ev.tokens / ev.candidates;
            assert!(
                (profile.tokens_per_candidate.0..=profile.tokens_per_candidate.1).contains(&per)
            );
            assert!(ev.class <= 2);
            assert!((ev.tenant as usize) < profile.tenants);
            if let Some(d) = ev.deadline_us {
                assert!((profile.deadline_us.0..=profile.deadline_us.1).contains(&d));
            }
        }
    }

    #[test]
    fn profiles_resolve_by_name() {
        for name in ["steady", "diurnal", "burst", "overlap"] {
            assert_eq!(trace_profile_by_name(name, 5.0).unwrap().name, name);
        }
        assert!(trace_profile_by_name("nope", 5.0).is_none());
    }

    #[test]
    fn overlap_duplicates_hit_the_requested_rate_and_share_corpora() {
        let profile = TraceProfile::overlap(100.0);
        let g = TraceGenerator::new(profile.clone(), 21);
        let n = 20_000_u64;
        let mut dups = 0_u64;
        for i in 0..n {
            let ev = g.event(i);
            let Some(orig) = ev.duplicate_of else {
                continue;
            };
            dups += 1;
            assert!(orig < i, "duplicate {i} points forward to {orig}");
            assert!(
                i - orig <= DUP_LOOKBACK,
                "duplicate {i} reaches past the window"
            );
            // A duplicate re-ranks its target's base corpus; when the
            // target is itself original, the corpora match exactly.
            let target = g.event(orig);
            if target.duplicate_of.is_none() {
                assert_eq!(ev.corpus, target.corpus, "event {i} vs base {orig}");
            }
        }
        let rate = dups as f64 / n as f64;
        assert!(
            (rate - profile.dup_fraction).abs() < 0.02,
            "empirical duplicate rate {rate:.3} vs requested {}",
            profile.dup_fraction
        );
        // Event 0 has nothing to duplicate.
        assert_eq!(g.event(0).duplicate_of, None);
    }

    #[test]
    fn dup_free_profiles_emit_no_duplicates() {
        for name in ["steady", "diurnal", "burst"] {
            let g = TraceGenerator::new(trace_profile_by_name(name, 50.0).unwrap(), 4);
            for i in 0..2_000_u64 {
                assert_eq!(g.event(i).duplicate_of, None, "{name} event {i}");
            }
        }
    }
}
