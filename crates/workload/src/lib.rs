//! Synthetic workload generation for the PRISM evaluation.
//!
//! The paper benchmarks on 18 retrieval datasets (15 BEIR tasks plus LoTTE,
//! Wikipedia and CodeRAG). Those corpora are not redistributable here, so
//! each dataset becomes a seeded [`dataset::DatasetProfile`] capturing the
//! statistics the experiments are sensitive to: how separable relevant and
//! irrelevant candidates are (drives pruning depth and precision), candidate
//! length (drives compute), vocabulary skew (drives embedding-cache hit
//! rates) and ground-truth density (drives Precision@K).
//!
//! [`generator::WorkloadGenerator`] turns a profile into concrete rerank
//! requests: query + candidate token sequences with *planted relevance*
//! following the convention in [`prism_model::semantics`], plus the
//! ground-truth relevant set.

pub mod dataset;
pub mod generator;
pub mod tokenizer;
pub mod trace;

pub use dataset::{dataset_by_name, dataset_catalog, DatasetProfile};
pub use generator::{CandidateDoc, RerankRequest, WorkloadGenerator};
pub use tokenizer::ZipfSampler;
pub use trace::{trace_profile_by_name, BurstSpec, TraceEvent, TraceGenerator, TraceProfile};
