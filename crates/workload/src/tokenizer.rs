//! Zipf-distributed token sampling.
//!
//! Natural-language token usage follows a rank-frequency power law; the
//! paper's embedding-table cache (§4.4) depends on that skew. This sampler
//! draws token *ranks* from a truncated Zipf(s) distribution via a
//! precomputed inverse CDF so benchmark token streams are deterministic and
//! cheap.

use rand::Rng;

/// Truncated Zipf sampler over ranks `0..n`.
///
/// # Examples
///
/// ```
/// use prism_workload::ZipfSampler;
/// let z = ZipfSampler::new(100, 1.0);
/// assert!(z.pmf(0) > z.pmf(50)); // low ranks are more frequent
/// ```
#[derive(Debug, Clone)]
pub struct ZipfSampler {
    cdf: Vec<f64>,
}

impl ZipfSampler {
    /// Builds a sampler over `n` ranks with exponent `s` (`s ≈ 1` for
    /// natural language). `n` is clamped to at least 1.
    pub fn new(n: usize, s: f64) -> Self {
        let n = n.max(1);
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for r in 0..n {
            acc += 1.0 / ((r + 1) as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        ZipfSampler { cdf }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Whether the sampler has a single rank only.
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Samples a rank in `0..n` (rank 0 most frequent).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        match self
            .cdf
            .binary_search_by(|probe| probe.partial_cmp(&u).expect("finite cdf"))
        {
            Ok(i) => i,
            Err(i) => i.min(self.cdf.len() - 1),
        }
    }

    /// Probability mass of rank `r`.
    pub fn pmf(&self, r: usize) -> f64 {
        if r >= self.cdf.len() {
            return 0.0;
        }
        if r == 0 {
            self.cdf[0]
        } else {
            self.cdf[r] - self.cdf[r - 1]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn cdf_is_normalized_and_monotone() {
        let z = ZipfSampler::new(100, 1.1);
        assert_eq!(z.len(), 100);
        let cdf_last = z.cdf.last().copied().unwrap();
        assert!((cdf_last - 1.0).abs() < 1e-12);
        for w in z.cdf.windows(2) {
            assert!(w[1] >= w[0]);
        }
    }

    #[test]
    fn rank_zero_is_most_frequent() {
        let z = ZipfSampler::new(50, 1.0);
        assert!(z.pmf(0) > z.pmf(1));
        assert!(z.pmf(1) > z.pmf(10));
        assert!(z.pmf(99) == 0.0);
        // pmf(0)/pmf(9) == 10 under s=1.
        assert!((z.pmf(0) / z.pmf(9) - 10.0).abs() < 1e-9);
    }

    #[test]
    fn empirical_distribution_is_skewed() {
        let z = ZipfSampler::new(1000, 1.0);
        let mut rng = StdRng::seed_from_u64(7);
        let mut counts = vec![0_usize; 1000];
        let draws = 50_000;
        for _ in 0..draws {
            counts[z.sample(&mut rng)] += 1;
        }
        // Top-10% of ranks should attract well over half the mass.
        let head: usize = counts[..100].iter().sum();
        assert!(head * 2 > draws, "head {head}/{draws}");
        // All samples within range is implicit; spot-check the tail exists.
        let tail: usize = counts[500..].iter().sum();
        assert!(tail > 0);
    }

    #[test]
    fn single_rank_always_zero() {
        let z = ZipfSampler::new(1, 1.2);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10 {
            assert_eq!(z.sample(&mut rng), 0);
        }
        let z0 = ZipfSampler::new(0, 1.0);
        assert_eq!(z0.len(), 1, "clamped to one rank");
    }

    #[test]
    fn higher_exponent_more_skew() {
        let flat = ZipfSampler::new(100, 0.5);
        let steep = ZipfSampler::new(100, 2.0);
        assert!(steep.pmf(0) > flat.pmf(0));
    }
}
