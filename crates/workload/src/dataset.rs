//! The 18 dataset profiles behind the paper's microbenchmarks (§6.1).
//!
//! Each profile is a compact statistical description of one benchmark
//! dataset. Parameters were chosen to span the qualitative range the paper
//! reports: highly separable corpora (Quora, ArguAna) prune early and keep
//! precision at 1.0; reasoning-heavy corpora (HotpotQA, CodeRAG) have
//! tighter score gaps, later pruning and sub-1.0 ceilings.

use serde::{Deserialize, Serialize};

/// Statistical profile of one retrieval dataset.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DatasetProfile {
    /// Dataset name (as in the paper's benchmark list).
    pub name: &'static str,
    /// Benchmark family (`"beir"`, `"lotte"`, `"wikipedia"`, `"coderag"`).
    pub family: &'static str,
    /// How far apart relevant and irrelevant relevance levels sit, in
    /// `(0, 1]`; larger = clusters separate earlier.
    pub separability: f32,
    /// Mean candidate length in tokens (scaled to the mini models'
    /// `max_seq` by the generator).
    pub candidate_len_mean: f32,
    /// Relative std-dev of candidate length.
    pub candidate_len_rel_std: f32,
    /// Zipf exponent of the background-token distribution.
    pub zipf_exponent: f64,
    /// Mean number of truly relevant candidates per request.
    pub relevant_per_request: f32,
    /// Token-level noise: probability a token contradicts its candidate's
    /// relevance level.
    pub token_noise: f32,
}

/// The paper's 18 evaluation datasets.
pub fn dataset_catalog() -> Vec<DatasetProfile> {
    fn beir(
        name: &'static str,
        separability: f32,
        len_mean: f32,
        relevant: f32,
        noise: f32,
    ) -> DatasetProfile {
        DatasetProfile {
            name,
            family: "beir",
            separability,
            candidate_len_mean: len_mean,
            candidate_len_rel_std: 0.25,
            zipf_exponent: 1.05,
            relevant_per_request: relevant,
            token_noise: noise,
        }
    }
    vec![
        // --- 15 BEIR tasks ---
        beir("msmarco", 0.55, 0.75, 6.0, 0.18),
        beir("trec-covid", 0.45, 0.95, 8.0, 0.22),
        beir("nfcorpus", 0.50, 0.85, 5.0, 0.20),
        beir("nq", 0.60, 0.80, 4.0, 0.16),
        beir("hotpotqa", 0.35, 0.90, 5.0, 0.26),
        beir("fiqa", 0.45, 0.85, 4.0, 0.22),
        beir("arguana", 0.75, 0.95, 3.0, 0.10),
        beir("webis-touche2020", 0.40, 1.00, 5.0, 0.24),
        beir("cqadupstack", 0.55, 0.70, 4.0, 0.18),
        beir("quora", 0.80, 0.40, 3.0, 0.08),
        beir("dbpedia-entity", 0.50, 0.65, 6.0, 0.20),
        beir("scidocs", 0.40, 0.90, 5.0, 0.24),
        beir("fever", 0.65, 0.75, 4.0, 0.14),
        beir("climate-fever", 0.45, 0.80, 5.0, 0.22),
        beir("scifact", 0.60, 0.90, 3.0, 0.15),
        // --- LoTTE ---
        DatasetProfile {
            name: "lotte",
            family: "lotte",
            separability: 0.50,
            candidate_len_mean: 0.80,
            candidate_len_rel_std: 0.35,
            zipf_exponent: 1.00,
            relevant_per_request: 5.0,
            token_noise: 0.20,
        },
        // --- Wikipedia (the Fig. 8 zoom-in dataset) ---
        DatasetProfile {
            name: "wikipedia",
            family: "wikipedia",
            separability: 0.65,
            candidate_len_mean: 0.90,
            candidate_len_rel_std: 0.20,
            zipf_exponent: 1.10,
            relevant_per_request: 6.0,
            token_noise: 0.14,
        },
        // --- CodeRAG ---
        DatasetProfile {
            name: "coderag",
            family: "coderag",
            separability: 0.38,
            candidate_len_mean: 1.00,
            candidate_len_rel_std: 0.40,
            zipf_exponent: 1.30,
            relevant_per_request: 4.0,
            token_noise: 0.26,
        },
    ]
}

/// Looks up a profile by name.
pub fn dataset_by_name(name: &str) -> Option<DatasetProfile> {
    dataset_catalog().into_iter().find(|d| d.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_has_eighteen_datasets() {
        let cat = dataset_catalog();
        assert_eq!(cat.len(), 18);
        assert_eq!(cat.iter().filter(|d| d.family == "beir").count(), 15);
        assert!(cat.iter().any(|d| d.name == "lotte"));
        assert!(cat.iter().any(|d| d.name == "wikipedia"));
        assert!(cat.iter().any(|d| d.name == "coderag"));
    }

    #[test]
    fn names_are_unique() {
        let cat = dataset_catalog();
        let mut names: Vec<_> = cat.iter().map(|d| d.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 18);
    }

    #[test]
    fn parameters_in_sane_ranges() {
        for d in dataset_catalog() {
            assert!((0.0..=1.0).contains(&d.separability), "{}", d.name);
            assert!(d.candidate_len_mean > 0.0);
            assert!(d.relevant_per_request >= 1.0);
            assert!((0.0..0.5).contains(&d.token_noise));
            assert!(d.zipf_exponent > 0.5);
        }
    }

    #[test]
    fn lookup_by_name() {
        assert!(dataset_by_name("wikipedia").is_some());
        assert!(dataset_by_name("msmarco").is_some());
        assert!(dataset_by_name("imaginary").is_none());
    }

    #[test]
    fn difficulty_spread_exists() {
        let cat = dataset_catalog();
        let max = cat.iter().map(|d| d.separability).fold(0.0_f32, f32::max);
        let min = cat.iter().map(|d| d.separability).fold(1.0_f32, f32::min);
        // Catalog must span easy and hard datasets for the latency range
        // experiments (Table 3 reports wide per-dataset ranges).
        assert!(max - min > 0.3);
    }
}
